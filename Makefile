# CI entry points. `make ci` is what every PR must keep green: vet, build,
# the full test suite, and the race detector over the packages that share
# compiled programs across goroutines (the parallel evaluation sweep).

GO ?= go

.PHONY: ci vet build test race bench figures

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/report ./internal/core ./internal/sim

bench:
	$(GO) test -bench=. -benchmem -run='^$$'

figures:
	$(GO) run ./cmd/paperfigs
