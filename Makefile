# CI entry points. `make ci` is what every PR must keep green: vet, build,
# the full test suite, the race detector over the packages that share
# compiled programs across goroutines (the parallel evaluation sweep and
# the vsimdd daemon, whose suite starts a server on a random port, runs a
# load burst plus a canceled-deadline request, and asserts clean shutdown
# and exact-sum metric invariants), and short fuzzing smoke runs of the
# scheduler and of the differential engine-equivalence harness (reference
# interpreter vs pre-decoded engine over generated programs).

GO ?= go

.PHONY: ci vet build test race fuzz fuzz-engine bench bench-json figures

ci: vet build test race fuzz fuzz-engine

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/report ./internal/core ./internal/sim ./internal/server

fuzz:
	$(GO) test ./internal/sched -run='^$$' -fuzz=FuzzSchedule -fuzztime=10s

fuzz-engine:
	$(GO) test ./internal/sim -run='^$$' -fuzz=FuzzEngineEquivalence -fuzztime=10s

bench:
	$(GO) test -bench=. -benchmem -run='^$$'

# bench-json runs the headline benchmarks and writes BENCH_<date>.json
# (machine-readable: ns/op plus custom metrics such as sim_ops/s).
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_$$(date +%Y-%m-%d).json

figures:
	$(GO) run ./cmd/paperfigs
