# CI entry points. `make ci` is what every PR must keep green: vet, build,
# the full test suite, the race detector over the packages that share
# compiled programs across goroutines (the parallel evaluation sweep), and
# a short scheduler fuzzing smoke run.

GO ?= go

.PHONY: ci vet build test race fuzz bench figures

ci: vet build test race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/report ./internal/core ./internal/sim

fuzz:
	$(GO) test ./internal/sched -run='^$$' -fuzz=FuzzSchedule -fuzztime=10s

bench:
	$(GO) test -bench=. -benchmem -run='^$$'

figures:
	$(GO) run ./cmd/paperfigs
