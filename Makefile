# CI entry points. `make ci` is what every PR must keep green: vet, build,
# the full test suite, the race detector over the packages that share
# compiled programs across goroutines (the parallel evaluation sweep and
# the vsimdd daemon, whose suite starts a server on a random port, runs a
# load burst plus a canceled-deadline request, exercises the result cache
# under contention — N concurrent identical requests must coalesce onto
# exactly one simulation, and hits must be bit-identical to fresh runs —
# and asserts clean shutdown and exact-sum metric invariants over mixed
# hit/miss traffic, and the scheduler, whose pooled scratch arenas and
# package-init descriptor tables must stay clean under concurrent
# Compiles), and short fuzzing smoke runs of the
# scheduler (differential: fast path vs sched.ReferenceSchedule must be
# schedule-identical), of the differential engine-equivalence harness (reference
# interpreter vs pre-decoded engine over generated programs), of the
# three-way v3 engine harness (threaded-code engine vs both retained
# oracles, across memory models including cacheorg), of the
# memory-hierarchy equivalence harness (optimized mem.Hierarchy vs
# mem.ReferenceHierarchy over random access streams) and of the pluggable
# L2 cache-organization harness (internal/cacheorg: fast stride-class
# walks vs the reference per-element walk for every organization, plus
# the interleaved/banked2 organizations vs mem.Hierarchy). The race target also
# covers internal/sweep (the batched VL-sweep planner/executor fans groups
# out over the worker pool) and the sweep tests include the reduced
# cycles-and-energy-vs-VL golden check (testdata/golden/figurevl.txt), so
# `make ci` exercises the VL-sweep path end to end. When at least two
# BENCH_*.json files exist, ci also prints a non-fatal benchdiff report
# of the two most recent so perf regressions show up in every CI log.

GO ?= go

.PHONY: ci vet build test race fuzz fuzz-engine fuzz-engine3 fuzz-mem fuzz-cacheorg bench bench-json bench-diff bench-report figures

ci: vet build test race fuzz fuzz-engine fuzz-engine3 fuzz-mem fuzz-cacheorg bench-report

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/report ./internal/core ./internal/sim ./internal/server ./internal/mem ./internal/cacheorg ./internal/sched ./internal/sweep

fuzz:
	$(GO) test ./internal/sched -run='^$$' -fuzz=FuzzSchedule -fuzztime=10s

fuzz-engine:
	$(GO) test ./internal/sim -run='^$$' -fuzz=FuzzEngineEquivalence -fuzztime=10s

# fuzz-engine3 is the three-way differential smoke: the v3 threaded-code
# engine must agree bit-for-bit with both retained oracles (reference
# interpreter and v2 closure engine) on generated programs across memory
# models, including the pluggable cacheorg organizations.
fuzz-engine3:
	$(GO) test ./internal/sim -run='^$$' -fuzz=FuzzEngine3 -fuzztime=10s

fuzz-mem:
	$(GO) test ./internal/mem -run='^$$' -fuzz=FuzzMemHierarchy -fuzztime=10s

fuzz-cacheorg:
	$(GO) test ./internal/cacheorg -run='^$$' -fuzz=FuzzCacheOrg -fuzztime=10s

bench:
	$(GO) test -bench=. -benchmem -run='^$$'

# bench-json runs the headline benchmarks and writes BENCH_<date>.json
# (machine-readable: ns/op plus custom metrics such as sim_ops/s).
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_$$(date +%Y-%m-%d).json

# bench-diff compares the two most recent BENCH_*.json files and fails on
# a >5% regression of any headline metric (use THRESHOLD=n to override).
THRESHOLD ?= 5
bench-diff:
	@files=$$(ls -1 BENCH_*.json 2>/dev/null | tail -2); \
	set -- $$files; \
	if [ $$# -lt 2 ]; then echo "bench-diff: need two BENCH_*.json files"; exit 1; fi; \
	$(GO) run ./cmd/benchdiff -threshold $(THRESHOLD) -fail "$$1" "$$2"

# bench-report is the non-fatal ci variant: it prints the diff when two
# BENCH files exist and stays quiet (and green) otherwise.
bench-report:
	@files=$$(ls -1 BENCH_*.json 2>/dev/null | tail -2); \
	set -- $$files; \
	if [ $$# -ge 2 ]; then $(GO) run ./cmd/benchdiff -threshold $(THRESHOLD) "$$1" "$$2"; \
	else echo "bench-report: fewer than two BENCH_*.json files, skipping"; fi

figures:
	$(GO) run ./cmd/paperfigs
