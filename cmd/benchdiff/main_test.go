package main

import "testing"

func docPair() (*doc, *doc) {
	old := &doc{
		SimOpsPerS:     30e6,
		ServiceReqPerS: 300,
		Benchmarks: map[string]bench{
			"Simulator": {Metrics: map[string]float64{"ns/op": 7e6, "sim_ops/s": 30e6}},
			"Collect":   {Metrics: map[string]float64{"ns/op": 3e9}},
			"OldOnly":   {Metrics: map[string]float64{"ns/op": 1}},
		},
	}
	new := &doc{
		SimOpsPerS:     39e6,
		ServiceReqPerS: 290,
		Benchmarks: map[string]bench{
			"Simulator": {Metrics: map[string]float64{"ns/op": 5.5e6, "sim_ops/s": 39e6}},
			"Collect":   {Metrics: map[string]float64{"ns/op": 3.4e9}},
			"NewOnly":   {Metrics: map[string]float64{"ns/op": 1}},
		},
	}
	return old, new
}

func find(rows []row, name string) *row {
	for i := range rows {
		if rows[i].Name == name {
			return &rows[i]
		}
	}
	return nil
}

func TestCompareDirections(t *testing.T) {
	old, new := docPair()
	rows := compare(old, new, 5)

	if r := find(rows, "sim_ops_per_s"); r == nil || r.Regression {
		t.Errorf("sim_ops_per_s +30%% flagged as regression: %+v", r)
	}
	// service_req_s dropped ~3.3%: inside the 5% threshold.
	if r := find(rows, "service_req_s"); r == nil || r.Regression {
		t.Errorf("service_req_s -3.3%% within threshold flagged: %+v", r)
	}
	// ns/op is lower-is-better: a 13% rise is a regression.
	if r := find(rows, "Collect ns/op"); r == nil || !r.Regression {
		t.Errorf("Collect ns/op +13%% not flagged: %+v", r)
	}
	// ns/op falling sharply is an improvement, not a regression.
	if r := find(rows, "Simulator ns/op"); r == nil || r.Regression {
		t.Errorf("Simulator ns/op drop flagged: %+v", r)
	}
	// Benchmarks present in only one file are reported with a note rather
	// than silently skipped, and never count as regressions.
	if r := find(rows, "NewOnly ns/op"); r == nil || r.Note != "new metric" || r.Regression {
		t.Errorf("NewOnly ns/op not reported as new metric: %+v", r)
	}
	if r := find(rows, "OldOnly ns/op"); r == nil || r.Note != "dropped metric" || r.Regression {
		t.Errorf("OldOnly ns/op not reported as dropped metric: %+v", r)
	}
}

// TestCompareNewHeadline models the situation the note rows exist for: an
// old baseline predating a headline metric. The diff must surface the new
// metric without flagging a regression at any threshold.
func TestCompareNewHeadline(t *testing.T) {
	old := &doc{SimOpsPerS: 30e6}
	new := &doc{SimOpsPerS: 31e6, CacheOrgCellsPerS: 240}
	rows := compare(old, new, 0)
	r := find(rows, "cacheorg_cells_s")
	if r == nil {
		t.Fatal("cacheorg_cells_s missing from rows")
	}
	if r.Note != "new metric" || r.Regression {
		t.Errorf("cacheorg_cells_s: %+v, want Note=\"new metric\", no regression", r)
	}
	for _, r := range rows {
		if r.Regression {
			t.Errorf("unexpected regression row: %+v", r)
		}
	}
	// The reverse direction: a metric dropped from the new run.
	rows = compare(new, old, 0)
	if r := find(rows, "cacheorg_cells_s"); r == nil || r.Note != "dropped metric" || r.Regression {
		t.Errorf("dropped cacheorg_cells_s: %+v", r)
	}
}

func TestCompareThreshold(t *testing.T) {
	old, new := docPair()
	// With a 3% threshold the service_req_s drop becomes a regression.
	rows := compare(old, new, 3)
	if r := find(rows, "service_req_s"); r == nil || !r.Regression {
		t.Errorf("service_req_s -3.3%% not flagged at 3%% threshold: %+v", r)
	}
}

func TestCollectSpeedupGuard(t *testing.T) {
	d := &doc{Benchmarks: map[string]bench{
		"Collect":           {Metrics: map[string]float64{"ns/op": 2e9}},
		"CollectSequential": {Metrics: map[string]float64{"ns/op": 3e9}},
	}}
	if sp := collectSpeedup(d); sp != 1.5 {
		t.Fatalf("collectSpeedup = %v, want 1.5", sp)
	}
	// The regression the guard exists for: parallel slower than sequential.
	d.Benchmarks["Collect"] = bench{Metrics: map[string]float64{"ns/op": 4e9}}
	if sp := collectSpeedup(d); sp >= 1 {
		t.Fatalf("collectSpeedup = %v, want < 1 (parallel regression)", sp)
	}
	// Absent benchmarks must not fabricate a ratio.
	if sp := collectSpeedup(&doc{}); sp != 0 {
		t.Fatalf("collectSpeedup(empty) = %v, want 0", sp)
	}
}

func TestLowerIsBetter(t *testing.T) {
	cases := map[string]bool{
		"ns/op":       true,
		"B/op":        true,
		"allocs/op":   true,
		"sim_ops/s":   false,
		"sched_ops/s": false,
	}
	for m, want := range cases {
		if got := lowerIsBetter(m); got != want {
			t.Errorf("lowerIsBetter(%q) = %v, want %v", m, got, want)
		}
	}
}
