// Command benchdiff compares two BENCH_*.json files produced by `make
// bench-json` and reports per-metric deltas, flagging regressions beyond
// a configurable threshold. `make bench-diff` runs it against the two
// most recent BENCH files; `make ci` includes a non-fatal report when a
// prior BENCH file exists, so a perf regression is visible in every CI
// log without making the build flaky on noisy machines.
//
// Usage:
//
//	benchdiff [-threshold 5] [-fail] OLD.json NEW.json
//
// With -fail the exit status is 1 when any higher-is-better metric
// dropped (or lower-is-better metric rose) by more than the threshold
// percentage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// doc mirrors the subset of the benchjson schema benchdiff reads.
type doc struct {
	Date              string           `json:"date"`
	SimOpsPerS        float64          `json:"sim_ops_per_s"`
	SimOpsRefPerS     float64          `json:"sim_ops_ref_s"`
	SimOpsV2PerS      float64          `json:"sim_ops_v2_s"`
	ServiceReqPerS    float64          `json:"service_req_s"`
	VLSweepCellsPerS  float64          `json:"vlsweep_cells_s"`
	CacheOrgCellsPerS float64          `json:"cacheorg_cells_s"`
	Benchmarks        map[string]bench `json:"benchmarks"`
}

type bench struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// row is one compared metric. A non-empty Note marks a metric present in
// only one of the two documents ("new metric" / "dropped metric"): it is
// reported instead of silently skipped, but never counts as a regression —
// an older baseline predating a headline metric must not fail the diff.
type row struct {
	Name       string
	Old, New   float64
	DeltaPct   float64 // signed percent change, new vs old
	Regression bool    // beyond threshold in the bad direction
	Note       string  // "new metric" / "dropped metric" when not comparable
}

// lowerIsBetter reports the improvement direction of a metric by name:
// rates (anything per second) improve upward, per-op costs (ns/op, B/op,
// allocs/op) improve downward.
func lowerIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "/op")
}

// collectSpeedup derives the parallel sweep's wall-clock speedup from a
// document: BenchmarkCollectSequential ns/op over BenchmarkCollect ns/op.
// Below 1.0 the worker pool made the sweep slower than running it
// sequentially — a regression regardless of how the two runs compare to
// an older baseline, so main guards it directly (with the regression
// threshold as tolerance: on a single-CPU machine the two variants are
// the same work and measure at parity plus scheduling noise).
func collectSpeedup(d *doc) float64 {
	// benchjson strips the "Benchmark" prefix from map keys.
	par := d.Benchmarks["Collect"].Metrics["ns/op"]
	seq := d.Benchmarks["CollectSequential"].Metrics["ns/op"]
	if par <= 0 || seq <= 0 {
		return 0
	}
	return seq / par
}

// compare diffs the headline fields and every shared benchmark metric of
// two bench documents. threshold is the regression tolerance in percent.
func compare(old, new *doc, threshold float64) []row {
	var rows []row
	add := func(name string, o, n float64, lower bool) {
		switch {
		case o == 0 && n == 0:
			return // metric absent from both runs
		case o == 0:
			rows = append(rows, row{Name: name, New: n, Note: "new metric"})
			return
		case n == 0:
			rows = append(rows, row{Name: name, Old: o, Note: "dropped metric"})
			return
		}
		d := (n - o) / o * 100
		bad := d < -threshold
		if lower {
			bad = d > threshold
		}
		rows = append(rows, row{Name: name, Old: o, New: n, DeltaPct: d, Regression: bad})
	}
	add("sim_ops_per_s", old.SimOpsPerS, new.SimOpsPerS, false)
	add("sim_ops_ref_s", old.SimOpsRefPerS, new.SimOpsRefPerS, false)
	add("sim_ops_v2_s", old.SimOpsV2PerS, new.SimOpsV2PerS, false)
	add("service_req_s", old.ServiceReqPerS, new.ServiceReqPerS, false)
	add("vlsweep_cells_s", old.VLSweepCellsPerS, new.VLSweepCellsPerS, false)
	add("cacheorg_cells_s", old.CacheOrgCellsPerS, new.CacheOrgCellsPerS, false)
	add("Collect_parallel_speedup", collectSpeedup(old), collectSpeedup(new), false)

	names := make([]string, 0, len(old.Benchmarks)+len(new.Benchmarks))
	for name := range old.Benchmarks {
		names = append(names, name)
	}
	for name := range new.Benchmarks {
		if _, ok := old.Benchmarks[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, n := old.Benchmarks[name], new.Benchmarks[name]
		metrics := make([]string, 0, len(o.Metrics)+len(n.Metrics))
		for m := range o.Metrics {
			metrics = append(metrics, m)
		}
		for m := range n.Metrics {
			if _, ok := o.Metrics[m]; !ok {
				metrics = append(metrics, m)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			add(name+" "+m, o.Metrics[m], n.Metrics[m], lowerIsBetter(m))
		}
	}
	return rows
}

func load(path string) (*doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

func render(w *os.File, oldPath, newPath string, rows []row) int {
	fmt.Fprintf(w, "benchdiff %s -> %s\n", oldPath, newPath)
	fmt.Fprintf(w, "%-40s %14s %14s %8s\n", "metric", "old", "new", "delta")
	regressions := 0
	for _, r := range rows {
		if r.Note != "" {
			fmt.Fprintf(w, "%-40s %14.4g %14.4g %8s  %s\n", r.Name, r.Old, r.New, "-", r.Note)
			continue
		}
		mark := ""
		if r.Regression {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-40s %14.4g %14.4g %+7.2f%%%s\n", r.Name, r.Old, r.New, r.DeltaPct, mark)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "%d regression(s) beyond threshold\n", regressions)
	}
	return regressions
}

func main() {
	threshold := flag.Float64("threshold", 5, "regression threshold in percent")
	failOnReg := flag.Bool("fail", false, "exit 1 when a regression exceeds the threshold")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-fail] OLD.json NEW.json")
		os.Exit(2)
	}
	oldDoc, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newDoc, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	regressions := render(os.Stdout, flag.Arg(0), flag.Arg(1), compare(oldDoc, newDoc, *threshold))
	// Absolute guard, independent of the baseline: the parallel sweep must
	// not be slower than its own sequential variant in the new run.
	if sp, floor := collectSpeedup(newDoc), 1-*threshold/100; sp > 0 && sp < floor {
		fmt.Printf("Collect_parallel_speedup %.3f < %.2f: parallel sweep slower than sequential  REGRESSION\n", sp, floor)
		regressions++
	}
	if *failOnReg && regressions > 0 {
		os.Exit(1)
	}
}
