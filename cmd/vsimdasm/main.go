// Command vsimdasm assembles and runs a Vector-µSIMD-VLIW assembly file
// (see internal/asm for the syntax), printing execution statistics and
// optionally dumping memory or the disassembly/schedule.
//
// Usage:
//
//	vsimdasm prog.s                          # assemble + run on Vector2-2w
//	vsimdasm -config uSIMD-4w prog.s
//	vsimdasm -dump 0x10000:64 prog.s         # hex-dump memory after the run
//	vsimdasm -dis prog.s                     # print the round-tripped disassembly
//	vsimdasm -sched prog.s                   # print the schedule of block 0
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vsimdvliw/internal/asm"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/machine"
)

func main() {
	cfgName := flag.String("config", "Vector2-2w", "machine configuration")
	memName := flag.String("mem", "realistic", "memory model: perfect or realistic")
	dump := flag.String("dump", "", "hex-dump a memory range after the run (addr:len)")
	dis := flag.Bool("dis", false, "print the disassembly instead of running")
	schedDump := flag.Bool("sched", false, "print the schedule of the first block")
	flag.Parse()

	if flag.NArg() != 1 {
		fail(fmt.Errorf("usage: vsimdasm [flags] file.s"))
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	f, err := asm.Assemble(flag.Arg(0), string(src))
	if err != nil {
		fail(err)
	}
	if *dis {
		fmt.Print(asm.Disassemble(f))
		return
	}
	cfg := machine.ByName(*cfgName)
	if cfg == nil {
		fail(fmt.Errorf("unknown configuration %q", *cfgName))
	}
	prog, err := core.Compile(f, cfg)
	if err != nil {
		fail(err)
	}
	if *schedDump {
		fmt.Print(prog.Sched.Blocks[0].Dump(cfg))
		return
	}
	model := core.Realistic
	if *memName == "perfect" {
		model = core.Perfect
	}
	m := prog.NewMachine(model)
	res, err := m.Run()
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s on %s: %d cycles (%d stalls), %d ops, %d µops (OPC %.2f, µOPC %.2f)\n",
		flag.Arg(0), cfg.Name, res.Cycles, res.StallCycles, res.Ops, res.MicroOps,
		res.OPC(), res.MicroOPC())

	if *dump != "" {
		parts := strings.SplitN(*dump, ":", 2)
		if len(parts) != 2 {
			fail(fmt.Errorf("bad -dump %q, want addr:len", *dump))
		}
		addr, err1 := strconv.ParseInt(parts[0], 0, 64)
		n, err2 := strconv.ParseInt(parts[1], 0, 64)
		if err1 != nil || err2 != nil {
			fail(fmt.Errorf("bad -dump %q", *dump))
		}
		raw, err := m.ReadBytes(addr, n)
		if err != nil {
			fail(err)
		}
		for i := 0; i < len(raw); i += 16 {
			end := i + 16
			if end > len(raw) {
				end = len(raw)
			}
			fmt.Printf("%#08x ", addr+int64(i))
			for _, b := range raw[i:end] {
				fmt.Printf(" %02x", b)
			}
			fmt.Println()
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vsimdasm:", err)
	os.Exit(1)
}
