// Command vsimdload drives a running vsimdd daemon with a closed-loop
// workload at a fixed concurrency for a fixed duration and reports
// throughput (req/s) and latency percentiles (p50/p95/p99).
//
// Usage:
//
//	vsimdload -url http://127.0.0.1:8037 -c 8 -d 30s
//	vsimdload -apps gsm_dec,jpeg_enc -configs VLIW-2w,Vector2-2w -mem realistic
//	vsimdload -timeout-ms 1 -d 5s      # deadline-storm: exercises cancellation
//	vsimdload -prewarm -c 16 -d 10s    # hot-cache regime (result-hits only)
//	vsimdload -fresh -d 10s            # bypass the result cache (simulate path)
//	vsimdload -vl 4 -d 10s             # cap every request at vector length 4
//	vsimdload -vl auto -d 10s          # let the daemon's autotuner pick the VL
//	vsimdload -json -                  # machine-readable report on stdout
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vsimdvliw/internal/isa"
	"vsimdvliw/internal/server"
)

func main() {
	var (
		url       = flag.String("url", "http://127.0.0.1:8037", "daemon base URL")
		conc      = flag.Int("c", 4, "concurrent closed-loop clients")
		dur       = flag.Duration("d", 10*time.Second, "load duration")
		appsF     = flag.String("apps", "", "comma-separated applications (empty = default mix)")
		cfgsF     = flag.String("configs", "", "comma-separated configurations (empty = default mix)")
		memF      = flag.String("mem", "realistic", "memory model for the workload")
		timeoutMS = flag.Int64("timeout-ms", 0, "per-request deadline in ms (0 = none)")
		prewarm   = flag.Bool("prewarm", false, "issue each distinct request once before the timed window (hot-cache measurement)")
		fresh     = flag.Bool("fresh", false, "bypass the daemon's result cache (measure the simulate path)")
		vlF       = flag.String("vl", "", "vector-length cap for every request: 1..16, 0 for uncapped, or \"auto\" (empty = no cap field)")
		jsonOut   = flag.String("json", "", "also write the report as JSON to this file (- = stdout)")
	)
	flag.Parse()

	vl, err := parseVL(*vlF)
	if err != nil {
		fail(err)
	}
	reqs, err := workload(*appsF, *cfgsF, *memF, *timeoutMS, *fresh, vl)
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := server.Load(ctx, server.LoadOptions{
		URL:         strings.TrimRight(*url, "/"),
		Concurrency: *conc,
		Duration:    *dur,
		Requests:    reqs,
		Prewarm:     *prewarm,
	})
	if err != nil {
		fail(err)
	}
	fmt.Println(rep)

	if *jsonOut != "" {
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		enc = append(enc, '\n')
		if *jsonOut == "-" {
			if _, err := os.Stdout.Write(enc); err != nil {
				fail(err)
			}
		} else if err := os.WriteFile(*jsonOut, enc, 0o644); err != nil {
			fail(err)
		}
	}
	if rep.Errors > 0 {
		fail(fmt.Errorf("%d requests failed (transport errors or 5xx)", rep.Errors))
	}
}

// workload builds the request mix from the flag values: the cross product
// of the requested apps and configs, validated against the known names so
// typos fail up front with the valid values.
func workload(appsCSV, cfgsCSV, mem string, timeoutMS int64, fresh bool, vl server.VLValue) ([]server.RunRequest, error) {
	if _, err := server.LookupMemory(mem); err != nil {
		return nil, err
	}
	if appsCSV == "" && cfgsCSV == "" {
		base := server.DefaultWorkload()
		for i := range base {
			base[i].Memory = mem
			base[i].TimeoutMS = timeoutMS
			base[i].Fresh = fresh
			base[i].VL = vl
		}
		return base, nil
	}
	appNames := splitOrDefault(appsCSV, []string{"gsm_dec"})
	cfgNames := splitOrDefault(cfgsCSV, []string{"Vector2-2w"})
	var reqs []server.RunRequest
	for _, a := range appNames {
		if _, err := server.LookupApp(a); err != nil {
			return nil, err
		}
		for _, c := range cfgNames {
			if _, err := server.LookupConfig(c); err != nil {
				return nil, err
			}
			reqs = append(reqs, server.RunRequest{
				App: a, Config: c, Memory: mem, TimeoutMS: timeoutMS, Fresh: fresh, VL: vl,
			})
		}
	}
	return reqs, nil
}

// parseVL interprets the -vl flag: empty means "send no cap" (zero value,
// omitted from the wire), "auto" asks the daemon's autotuner, and a number
// is validated against the architectural maximum up front.
func parseVL(s string) (server.VLValue, error) {
	switch s {
	case "":
		return 0, nil
	case "auto":
		return server.VLAuto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > isa.MaxVL {
		return 0, fmt.Errorf("-vl must be 0..%d or \"auto\", got %q", isa.MaxVL, s)
	}
	return server.VLValue(n), nil
}

func splitOrDefault(csv string, def []string) []string {
	if csv == "" {
		return def
	}
	parts := strings.Split(csv, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vsimdload:", err)
	os.Exit(1)
}
