// Command vsimdd is the simulation daemon: it serves the Vector-µSIMD-
// VLIW evaluation matrix over a JSON HTTP API, backed by sharded LRUs of
// compiled programs and of finished results (identical requests coalesce
// onto one simulation and then serve result-hits in microseconds, with
// ETag/If-None-Match revalidation), an admission-controlled worker pool,
// per-request deadlines and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	vsimdd                          # listen on :8037 with NumCPU workers
//	vsimdd -addr 127.0.0.1:0        # random port (printed on stdout)
//	vsimdd -workers 8 -queue 64 -cache 512
//	vsimdd -warmup                  # pre-simulate the 120-cell matrix first
//	vsimdd -warmup-vls 1,2,4,8,16   # also sweep these VL caps (fills the
//	                                # autotune tables, so "vl":"auto" answers
//	                                # from history immediately)
//
// API (see README "Running the daemon" for curl examples):
//
//	POST /v1/run     {"app":"jpeg_enc","config":"Vector2-2w","memory":"realistic"}
//	POST /v1/sweep   {"apps":["gsm_dec"],"configs":["VLIW-2w","Vector2-2w"]}
//	POST /v1/vlsweep {"apps":["gsm_dec"],"vls":[1,2,4,8,16]}
//	GET  /healthz
//	GET  /metrics    Prometheus text format
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vsimdvliw/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8037", "listen address (host:port; port 0 picks one)")
		workers  = flag.Int("workers", 0, "simulation workers (0 = all CPUs)")
		queue    = flag.Int("queue", 0, "admission queue depth (0 = 4x workers); full queue sheds with 429")
		cache    = flag.Int("cache", 256, "compiled-program cache capacity (programs)")
		shards   = flag.Int("cache-shards", 16, "compiled-program cache shards")
		results  = flag.Int("result-cache", 4096, "result-cache capacity (results; 0 disables result caching and coalescing)")
		warmup   = flag.Bool("warmup", false, "pre-simulate the canonical 120-cell matrix into the result cache before listening")
		warmVLs  = flag.String("warmup-vls", "", "comma-separated VL caps to pre-sweep over the full matrix before listening (fills the result cache and autotune tables; empty disables)")
		check    = flag.Int64("check-cycles", 0, "cancellation poll interval in simulated cycles (0 = default)")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain budget")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	)
	flag.Parse()

	if *pprof != "" {
		// The profiling endpoints live on their own listener so they are
		// never exposed on the service address. DefaultServeMux carries
		// the /debug/pprof/* handlers registered by the pprof import.
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "vsimdd: pprof:", err)
			}
		}()
		fmt.Printf("vsimdd: pprof on http://%s/debug/pprof/\n", *pprof)
	}

	srv := server.New(server.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		CacheCapacity:       *cache,
		CacheShards:         *shards,
		ResultCacheCapacity: *results,
		DisableResultCache:  *results == 0,
		CheckCycles:         *check,
	})
	if *warmup {
		// Warm before listening so a fresh fleet member serves
		// result-hits from its very first request.
		t0 := time.Now()
		n, err := srv.Warmup(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "vsimdd: warmup:", err)
			os.Exit(1)
		}
		fmt.Printf("vsimdd: warmed %d cells in %s\n", n, time.Since(t0).Round(time.Millisecond))
	}
	if *warmVLs != "" {
		vls, err := parseVLs(*warmVLs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vsimdd: -warmup-vls:", err)
			os.Exit(1)
		}
		t0 := time.Now()
		n, err := srv.WarmupVL(context.Background(), vls)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vsimdd: warmup-vls:", err)
			os.Exit(1)
		}
		fmt.Printf("vsimdd: VL-swept %d runs in %s\n", n, time.Since(t0).Round(time.Millisecond))
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsimdd:", err)
		os.Exit(1)
	}
	fmt.Printf("vsimdd: listening on %s\n", bound)

	// Drain gracefully on SIGINT/SIGTERM: stop accepting, let in-flight
	// simulations finish (bounded by -drain-timeout), then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Println("vsimdd: draining…")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "vsimdd: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("vsimdd: stopped")
}

// parseVLs parses the comma-separated -warmup-vls value.
func parseVLs(s string) ([]int, error) {
	var vls []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		vls = append(vls, v)
	}
	return vls, nil
}
