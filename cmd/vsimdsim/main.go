// Command vsimdsim runs one benchmark application on one processor
// configuration and prints its execution statistics.
//
// Usage:
//
//	vsimdsim -app mpeg2_enc -config Vector2-4w [-mem perfect|realistic|realistic:banked8|...]
//	vsimdsim -app jpeg_enc -stats-json
//	vsimdsim -app jpeg_enc -trace 100 -trace-json trace.jsonl
//	vsimdsim -list
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/metrics"
	"vsimdvliw/internal/report"
	"vsimdvliw/internal/server"
	"vsimdvliw/internal/sim"
)

func main() {
	appName := flag.String("app", "jpeg_enc", "application to run")
	cfgName := flag.String("config", "Vector2-2w", "machine configuration (see -list)")
	memName := flag.String("mem", "realistic", "memory model: perfect, realistic, or an L2 organization (realistic:interleaved, realistic:bicameral, realistic:banked4, realistic:banked8)")
	list := flag.Bool("list", false, "list applications and configurations")
	trace := flag.Int("trace", 0, "print the first N basic-block trace lines")
	statsJSON := flag.Bool("stats-json", false, "print the statistics as JSON instead of text")
	traceJSON := flag.String("trace-json", "", "write a bounded JSONL event trace to this file")
	traceJSONLimit := flag.Int("trace-json-limit", 100000,
		"maximum JSONL trace events before the truncation marker (0 = unbounded)")
	flag.Parse()

	if *list {
		fmt.Println("applications:")
		for _, a := range apps.All() {
			fmt.Printf("  %-10s vector regions: %v\n", a.Name, a.Regions)
		}
		fmt.Println("configurations:")
		for _, c := range machine.All() {
			fmt.Printf("  %s\n", c.Name)
		}
		return
	}

	// The lookup helpers are shared with the vsimdd API: a typo in any of
	// the three axes fails up front with the list of valid values instead
	// of a bare "unknown name".
	a, err := server.LookupApp(*appName)
	if err != nil {
		fail(err)
	}
	cfg, err := server.LookupConfig(*cfgName)
	if err != nil {
		fail(err)
	}
	mem, err := server.LookupMemory(*memName)
	if err != nil {
		fail(err)
	}

	variant := report.VariantFor(cfg)
	built := a.Build(variant)
	prog, err := core.Compile(built.Func, cfg)
	if err != nil {
		fail(err)
	}
	machineSim := prog.NewMachine(mem)
	if *trace > 0 {
		// Stream through a line-limiting writer: the trace stops at N lines
		// with an explicit "... truncated after N lines" marker instead of
		// cutting off silently mid-run.
		machineSim.Trace = metrics.NewLineLimitWriter(os.Stdout, *trace)
	}
	var traceFile *os.File
	var traceBuf *bufio.Writer
	if *traceJSON != "" {
		traceFile, err = os.Create(*traceJSON)
		if err != nil {
			fail(err)
		}
		traceBuf = bufio.NewWriter(traceFile)
		machineSim.TraceJSON = metrics.NewTraceWriter(traceBuf, *traceJSONLimit)
	}
	res, err := machineSim.Run()
	if err != nil {
		fail(err)
	}
	if traceFile != nil {
		if err := machineSim.TraceJSON.Err(); err != nil {
			fail(err)
		}
		if err := traceBuf.Flush(); err != nil {
			fail(err)
		}
		if err := traceFile.Close(); err != nil {
			fail(err)
		}
	}

	if *statsJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report.CellMetrics{
			App: a.Name, Config: cfg.Name, ISA: cfg.ISA.String(),
			Issue: cfg.Issue, Memory: *memName,
			Stats:          res,
			StallsByOpcode: res.StallsByOpcode(),
		}); err != nil {
			fail(err)
		}
		return
	}

	fmt.Printf("%s on %s (%s code, %s memory)\n", a.Name, cfg.Name, variant, *memName)
	fmt.Printf("  cycles:        %d (stalls: %d)\n", res.Cycles, res.StallCycles)
	fmt.Printf("  operations:    %d (%.2f per cycle)\n", res.Ops, res.OPC())
	fmt.Printf("  micro-ops:     %d (%.2f per cycle)\n", res.MicroOps, res.MicroOPC())
	fmt.Printf("  vector cycles: %d (%.1f%% of execution)\n",
		res.VectorCycles(), 100*float64(res.VectorCycles())/float64(res.Cycles))
	if res.StallCycles > 0 {
		fmt.Printf("  stall causes: ")
		for _, c := range metrics.Causes() {
			if v := res.Stalls[c]; v != 0 {
				fmt.Printf(" %s=%d", c, v)
			}
		}
		fmt.Println()
	}
	for i := 0; i < sim.MaxRegions; i++ {
		r := res.Regions[i]
		if r.Cycles == 0 {
			continue
		}
		name := "scalar"
		if i > 0 && i-1 < len(a.Regions) {
			name = a.Regions[i-1]
		}
		fmt.Printf("  R%d %-9s cycles=%-9d ops=%-9d µops=%-10d stalls=%d\n",
			i, name, r.Cycles, r.Ops, r.MicroOps, r.StallCycles)
	}
	if mem == core.Realistic {
		fmt.Printf("  memory: L1 %d/%d  L2 %d/%d  L3 %d/%d (hits/misses), flushes=%d, strided=%d\n",
			res.Mem.L1Hits, res.Mem.L1Misses, res.Mem.L2Hits, res.Mem.L2Misses,
			res.Mem.L3Hits, res.Mem.L3Misses, res.Mem.CoherencyFlushes,
			res.Mem.StridedVectorAccesses)
		fmt.Printf("  L2 banks: hits %d/%d  misses %d/%d  conflicts=%d\n",
			res.Mem.L2BankHits[0], res.Mem.L2BankHits[1],
			res.Mem.L2BankMisses[0], res.Mem.L2BankMisses[1],
			res.Mem.BankConflicts)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vsimdsim:", err)
	os.Exit(1)
}
