// Command vsimdsim runs one benchmark application on one processor
// configuration and prints its execution statistics.
//
// Usage:
//
//	vsimdsim -app mpeg2_enc -config Vector2-4w [-mem perfect|realistic]
//	vsimdsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/core"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/report"
	"vsimdvliw/internal/sim"
)

func main() {
	appName := flag.String("app", "jpeg_enc", "application to run")
	cfgName := flag.String("config", "Vector2-2w", "machine configuration (see -list)")
	memName := flag.String("mem", "realistic", "memory model: perfect or realistic")
	list := flag.Bool("list", false, "list applications and configurations")
	trace := flag.Int("trace", 0, "print the first N basic-block trace lines")
	flag.Parse()

	if *list {
		fmt.Println("applications:")
		for _, a := range apps.All() {
			fmt.Printf("  %-10s vector regions: %v\n", a.Name, a.Regions)
		}
		fmt.Println("configurations:")
		for _, c := range machine.All() {
			fmt.Printf("  %s\n", c.Name)
		}
		return
	}

	a, err := apps.ByName(*appName)
	if err != nil {
		fail(err)
	}
	cfg := machine.ByName(*cfgName)
	if cfg == nil {
		fail(fmt.Errorf("unknown configuration %q (try -list)", *cfgName))
	}
	mem := core.Realistic
	switch *memName {
	case "perfect":
		mem = core.Perfect
	case "realistic":
	default:
		fail(fmt.Errorf("unknown memory model %q", *memName))
	}

	variant := report.VariantFor(cfg)
	built := a.Build(variant)
	prog, err := core.Compile(built.Func, cfg)
	if err != nil {
		fail(err)
	}
	machineSim := prog.NewMachine(mem)
	var traceBuf strings.Builder
	if *trace > 0 {
		machineSim.Trace = &traceBuf
	}
	res, err := machineSim.Run()
	if err != nil {
		fail(err)
	}
	if *trace > 0 {
		lines := strings.SplitAfter(traceBuf.String(), "\n")
		for i := 0; i < *trace && i < len(lines); i++ {
			fmt.Print(lines[i])
		}
	}

	fmt.Printf("%s on %s (%s code, %s memory)\n", a.Name, cfg.Name, variant, *memName)
	fmt.Printf("  cycles:        %d (stalls: %d)\n", res.Cycles, res.StallCycles)
	fmt.Printf("  operations:    %d (%.2f per cycle)\n", res.Ops, res.OPC())
	fmt.Printf("  micro-ops:     %d (%.2f per cycle)\n", res.MicroOps, res.MicroOPC())
	fmt.Printf("  vector cycles: %d (%.1f%% of execution)\n",
		res.VectorCycles(), 100*float64(res.VectorCycles())/float64(res.Cycles))
	for i := 0; i < sim.MaxRegions; i++ {
		r := res.Regions[i]
		if r.Cycles == 0 {
			continue
		}
		name := "scalar"
		if i > 0 && i-1 < len(a.Regions) {
			name = a.Regions[i-1]
		}
		fmt.Printf("  R%d %-9s cycles=%-9d ops=%-9d µops=%-10d stalls=%d\n",
			i, name, r.Cycles, r.Ops, r.MicroOps, r.StallCycles)
	}
	if mem == core.Realistic {
		fmt.Printf("  memory: L1 %d/%d  L2 %d/%d  L3 %d/%d (hits/misses), flushes=%d, strided=%d\n",
			res.Mem.L1Hits, res.Mem.L1Misses, res.Mem.L2Hits, res.Mem.L2Misses,
			res.Mem.L3Hits, res.Mem.L3Misses, res.Mem.CoherencyFlushes,
			res.Mem.StridedVectorAccesses)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vsimdsim:", err)
	os.Exit(1)
}
