// Command paperfigs regenerates every table and figure of the paper's
// evaluation section: it runs the six benchmark applications on the ten
// processor configurations of Table 2 under both memory models and prints
// the results in the paper's structure.
//
// Usage:
//
//	paperfigs              # everything
//	paperfigs -only table1 # one artifact: table1, figure1, table2,
//	                       # figure3, figure4, figure5a, figure5b,
//	                       # figure6, figure7, table3, ablations,
//	                       # cacheorg, vlsweep
//	paperfigs -v           # progress lines while simulating
//	paperfigs -j 4         # simulation workers (0 = all CPUs, 1 = serial)
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"

	"vsimdvliw/internal/core"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/report"
	"vsimdvliw/internal/sim"
	"vsimdvliw/internal/sweep"
)

func main() {
	only := flag.String("only", "", "render a single artifact (e.g. figure5a)")
	csvPath := flag.String("csv", "", "also write the raw evaluation matrix as CSV to this file")
	metricsDir := flag.String("metrics", "", "also write the full per-cell metrics (matrix.jsonl) to this directory")
	verbose := flag.Bool("v", false, "print per-run progress")
	workers := flag.Int("j", 0, "parallel simulation workers (0 = all CPUs, 1 = sequential)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after the sweep) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperfigs:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperfigs:", err)
			}
		}()
	}

	// Figure 4 and the ablation study need no full sweep.
	static := map[string]func() (string, error){
		"figure4":   report.Figure4,
		"ablations": func() (string, error) { return report.RunAblations(machine.ByName("Vector2-2w")) },
		"lanes":     report.LanesStudy,
		"cacheorg":  report.CacheOrgStudy,
		"vlsweep":   func() (string, error) { return sweep.Figure(machine.ByName("Vector2-4w"), sweep.DefaultVLs) },
	}
	if f, ok := static[*only]; ok {
		out, err := f()
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
		fmt.Println(out)
		return
	}

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	// Cancel the sweep cleanly on SIGINT/SIGTERM: running cells stop
	// within a few thousand simulated cycles and no partial output files
	// are written (the CSV/JSONL exports only start once the sweep has
	// fully collected).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	m, err := report.CollectOpts(report.Options{Progress: progress, Parallelism: *workers, Context: ctx})
	if err != nil {
		if errors.Is(err, sim.ErrCanceled) || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "paperfigs: canceled by signal; no output written")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
	if *csvPath != "" {
		if err := writeCSV(m, *csvPath); err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
	}
	if *metricsDir != "" {
		if err := writeMetrics(m, *metricsDir); err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
	}
	artifacts := []struct {
		name   string
		render func() string
	}{
		{"table1", m.Table1},
		{"figure1", m.Figure1},
		{"table2", m.Table2},
		{"figure3", m.Figure3},
		{"figure4", func() string {
			s, err := report.Figure4()
			if err != nil {
				return "figure4 failed: " + err.Error()
			}
			return s
		}},
		{"figure5a", func() string { return m.Figure5(core.Perfect) }},
		{"figure5b", func() string { return m.Figure5(core.Realistic) }},
		{"figure6", m.Figure6},
		{"figure7", m.Figure7},
		{"table3", m.Table3},
		{"energy", m.EnergyTable},
		{"lanes", func() string {
			out, err := report.LanesStudy()
			if err != nil {
				return "lanes study failed: " + err.Error()
			}
			return out
		}},
		{"ablations", func() string {
			out, err := report.RunAblations(machine.ByName("Vector2-2w"))
			if err != nil {
				return "ablations failed: " + err.Error()
			}
			return out
		}},
		{"cacheorg", func() string {
			out, err := report.CacheOrgStudy()
			if err != nil {
				return "cacheorg study failed: " + err.Error()
			}
			return out
		}},
		{"vlsweep", func() string {
			out, err := sweep.Figure(machine.ByName("Vector2-4w"), sweep.DefaultVLs)
			if err != nil {
				return "vlsweep figure failed: " + err.Error()
			}
			return out
		}},
	}
	found := false
	for _, a := range artifacts {
		if *only != "" && a.name != *only {
			continue
		}
		found = true
		fmt.Println(a.render())
	}
	if !found {
		fmt.Fprintf(os.Stderr, "paperfigs: unknown artifact %q\n", *only)
		os.Exit(1)
	}
}

// writeCSV exports the raw evaluation matrix, failing loudly (non-zero
// exit upstream) if any write — including the final close — fails.
func writeCSV(m *report.Matrix, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics exports the evaluation matrix as one JSONL record per
// app x configuration x memory-model cell, in the CSV row order.
func writeMetrics(m *report.Matrix, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "matrix.jsonl"))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := m.WriteMetricsJSONL(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
