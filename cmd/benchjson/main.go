// Command benchjson runs the repository's headline benchmarks and writes
// the parsed results as machine-readable JSON (BENCH_<date>.json via
// `make bench-json`). Every benchmark's iteration count and metrics
// (ns/op plus custom metrics such as sim_ops/s) are preserved, and the
// headline simulator throughput is lifted to the top level so regression
// tracking across commits is a one-field diff. It also spins up an
// in-process vsimdd and drives it with two short load bursts — cold
// start and prewarmed hot-cache — lifting the serving throughput to the
// service_req_s and service_hot_req_s headline fields.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"vsimdvliw/internal/server"
)

// result is the parsed form of one benchmark line.
type result struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// output is the JSON document bench-json writes.
type output struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	CPU        string  `json:"cpu,omitempty"`
	Benchtime  string  `json:"benchtime"`
	// SimBenchtime is the separate (longer) -benchtime of the simulator
	// benchmark family; see the -sim-benchtime flag.
	SimBenchtime string  `json:"sim_benchtime,omitempty"`
	SimOpsPerS   float64 `json:"sim_ops_per_s"`
	// SimOpsRefPerS and SimOpsV2PerS pin the retained oracle engines —
	// the reference interpreter and the v2 closure engine — to the same
	// workload as SimOpsPerS, so the v3 engine's speedup over both is a
	// one-field ratio in every BENCH file.
	SimOpsRefPerS float64 `json:"sim_ops_ref_s"`
	SimOpsV2PerS  float64 `json:"sim_ops_v2_s"`
	// SchedOpsPerS is the compile-path headline: static-scheduling
	// throughput of the fast scheduler on the BenchmarkSchedule workload
	// (internal/sched; BenchmarkScheduleReference in the benchmarks map is
	// the retained original on the same workload, so their ratio is the
	// fast path's speedup).
	SchedOpsPerS float64 `json:"sched_ops_s"`
	// ServiceReqPerS is the serving-path headline: completed /v1/run
	// requests per second from a short in-process vsimdd load burst
	// (0 when the burst is disabled with -service-duration 0).
	ServiceReqPerS float64 `json:"service_req_s"`
	// ServiceHotReqPerS is the hot-cache serving ceiling: the same burst
	// against a prewarmed daemon, where every request is a result-cache
	// hit served without entering the cycle loop.
	ServiceHotReqPerS float64 `json:"service_hot_req_s"`
	// VLSweepCellsPerS is the batched-sweep headline: cells per second of
	// one cold full-matrix /v1/vlsweep (compile-once grouping, pooled
	// machines, VL aliasing). VLSweepHotCellsPerS repeats the identical
	// sweep against the now-warm result cache.
	VLSweepCellsPerS    float64            `json:"vlsweep_cells_s"`
	VLSweepHotCellsPerS float64            `json:"vlsweep_hot_cells_s"`
	// CacheOrgCellsPerS is the organization-axis headline: cells per second
	// of one cold /v1/sweep over every app on Vector2-2w under the realistic
	// model plus all four L2 organizations (0 when disabled).
	CacheOrgCellsPerS float64 `json:"cacheorg_cells_s"`
	Service             *server.LoadReport `json:"service,omitempty"`
	ServiceHot          *server.LoadReport `json:"service_hot,omitempty"`
	Benchmarks          map[string]result  `json:"benchmarks"`
}

func main() {
	var (
		out         = flag.String("out", "", "output file (default stdout)")
		pattern     = flag.String("bench", "BenchmarkScheduler|BenchmarkCollect|BenchmarkSchedule|BenchmarkCompile", "benchmark regexp to run")
		benchtime   = flag.String("benchtime", "3x", "value for -benchtime")
		simPattern  = flag.String("sim-bench", "BenchmarkSimulator", "simulator-family benchmark regexp (empty folds them into -bench)")
		simTime     = flag.String("sim-benchtime", "300x", "value for -benchtime on the simulator family: the threaded-code engine runs one iteration in ~3ms, so a 3x window is dominated by one-time costs (branch-predictor and icache warm-up of the dispatch loop) and under-reports steady-state throughput")
		serviceDur  = flag.Duration("service-duration", 2*time.Second, "in-process vsimdd load-burst length (0 disables)")
		serviceConc = flag.Int("service-concurrency", runtime.NumCPU(), "load-burst client concurrency")
		vlsweepVLs  = flag.String("vlsweep-vls", "1,2,4,6,8,10,12,16", "VL axis of the full-matrix /v1/vlsweep burst (empty disables)")
		cacheorg    = flag.Bool("cacheorg", true, "run the cache-organization /v1/sweep burst")
	)
	flag.Parse()

	runs := [][]string{{"-run", "^$", "-bench", *pattern,
		"-benchtime", *benchtime, ".", "./internal/sched", "./internal/core"}}
	if *simPattern != "" {
		runs = append(runs, []string{"-run", "^$", "-bench", *simPattern,
			"-benchtime", *simTime, "."})
	}
	var buf bytes.Buffer
	for _, args := range runs {
		cmd := exec.Command("go", append([]string{"test"}, args...)...)
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: go test: %v\n%s", err, buf.String())
			os.Exit(1)
		}
	}

	doc := output{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchtime:  *benchtime,
		Benchmarks: map[string]result{},
	}
	if *simPattern != "" {
		doc.SimBenchtime = *simTime
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			doc.CPU = cpu
			continue
		}
		name, res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		doc.Benchmarks[name] = res
		if name == "Simulator" {
			doc.SimOpsPerS = res.Metrics["sim_ops/s"]
		}
		if name == "SimulatorReference" {
			doc.SimOpsRefPerS = res.Metrics["sim_ops_ref/s"]
		}
		if name == "SimulatorV2" {
			doc.SimOpsV2PerS = res.Metrics["sim_ops_v2/s"]
		}
		if name == "Schedule" {
			doc.SchedOpsPerS = res.Metrics["sched_ops/s"]
		}
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark results parsed from go test output:\n%s", buf.String())
		os.Exit(1)
	}

	if *serviceDur > 0 {
		cold, hot, err := serviceBurst(*serviceDur, *serviceConc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: service burst: %v\n", err)
			os.Exit(1)
		}
		doc.Service = cold
		doc.ServiceReqPerS = cold.ReqPerS
		doc.ServiceHot = hot
		doc.ServiceHotReqPerS = hot.ReqPerS
	}

	if *vlsweepVLs != "" {
		vls, err := parseVLs(*vlsweepVLs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -vlsweep-vls: %v\n", err)
			os.Exit(1)
		}
		cold, hot, err := vlsweepBurst(vls)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: vlsweep burst: %v\n", err)
			os.Exit(1)
		}
		doc.VLSweepCellsPerS = cold
		doc.VLSweepHotCellsPerS = hot
	}

	if *cacheorg {
		cells, err := cacheorgBurst()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: cacheorg burst: %v\n", err)
			os.Exit(1)
		}
		doc.CacheOrgCellsPerS = cells
	}

	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (sim_ops/s = %.0f, sim_ops_ref/s = %.0f, sim_ops_v2/s = %.0f, sched_ops/s = %.0f, service_req_s = %.1f, service_hot_req_s = %.1f, vlsweep_cells_s = %.1f, cacheorg_cells_s = %.1f)\n",
		*out, doc.SimOpsPerS, doc.SimOpsRefPerS, doc.SimOpsV2PerS, doc.SchedOpsPerS, doc.ServiceReqPerS, doc.ServiceHotReqPerS, doc.VLSweepCellsPerS, doc.CacheOrgCellsPerS)
}

// parseVLs parses the comma-separated -vlsweep-vls value.
func parseVLs(s string) ([]int, error) {
	var vls []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		vls = append(vls, v)
	}
	return vls, nil
}

// vlsweepBurst measures the batched sweep engine end to end: one cold
// full-matrix /v1/vlsweep on a fresh in-process daemon (cells per second,
// the vlsweep_cells_s headline) and the identical sweep again against the
// warm result cache. Any failed cell fails the measurement.
func vlsweepBurst(vls []int) (coldCellsPerS, hotCellsPerS float64, err error) {
	srv := server.New(server.Config{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if serr := srv.Shutdown(shutdownCtx); err == nil && serr != nil {
			err = serr
		}
	}()
	url := "http://" + addr + "/v1/vlsweep"
	sweep := func() (float64, error) {
		body, err := json.Marshal(&server.VLSweepRequest{VLs: vls})
		if err != nil {
			return 0, err
		}
		start := time.Now()
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var sr server.VLSweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		if resp.StatusCode != http.StatusOK || sr.Errors > 0 {
			return 0, fmt.Errorf("status %d, %d failed cells", resp.StatusCode, sr.Errors)
		}
		return float64(len(sr.Cells)) / elapsed.Seconds(), nil
	}
	if coldCellsPerS, err = sweep(); err != nil {
		return 0, 0, err
	}
	if hotCellsPerS, err = sweep(); err != nil {
		return 0, 0, err
	}
	return coldCellsPerS, hotCellsPerS, nil
}

// cacheorgBurst measures the organization axis end to end: one cold
// /v1/sweep over every benchmark on Vector2-2w under the realistic model
// plus all four L2 organizations (cells per second, the cacheorg_cells_s
// headline). Any failed cell fails the measurement.
func cacheorgBurst() (cellsPerS float64, err error) {
	srv := server.New(server.Config{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if serr := srv.Shutdown(shutdownCtx); err == nil && serr != nil {
			err = serr
		}
	}()
	req := server.SweepRequest{
		Apps:    server.AppNames(),
		Configs: []string{"Vector2-2w"},
		Memories: []string{"realistic", "realistic:interleaved",
			"realistic:bicameral", "realistic:banked4", "realistic:banked8"},
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	resp, err := http.Post("http://"+addr+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var sr server.SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK || sr.Errors > 0 {
		return 0, fmt.Errorf("status %d, %d failed cells", resp.StatusCode, sr.Errors)
	}
	return float64(len(sr.Cells)) / elapsed.Seconds(), nil
}

// serviceBurst measures the serving path twice: a cold-start burst (the
// daemon compiles and simulates its first cells mid-measurement) and a
// hot-cache burst against the now-warm daemon with an explicit prewarm
// pass, where every request is a result-cache hit — the serving ceiling.
// Transport errors fail the measurement.
func serviceBurst(dur time.Duration, conc int) (cold, hot *server.LoadReport, err error) {
	srv := server.New(server.Config{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	url := "http://" + addr
	cold, err = server.Load(context.Background(), server.LoadOptions{
		URL:         url,
		Concurrency: conc,
		Duration:    dur,
	})
	if err == nil {
		hot, err = server.Load(context.Background(), server.LoadOptions{
			URL:         url,
			Concurrency: conc,
			Duration:    dur,
			Prewarm:     true,
		})
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if serr := srv.Shutdown(shutdownCtx); err == nil && serr != nil {
		err = serr
	}
	if err != nil {
		return nil, nil, err
	}
	if n := cold.Errors + hot.Errors; n > 0 {
		return nil, nil, fmt.Errorf("%d requests failed during the bursts", n)
	}
	return cold, hot, nil
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkSimulator   3   6427189 ns/op   34420070 sim_ops/s
//
// into the benchmark's short name (GOMAXPROCS suffix stripped) and its
// iteration count and metric pairs.
func parseBenchLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		name = name[:i]
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	res := result{Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		res.Metrics[fields[i+1]] = v
	}
	if len(res.Metrics) == 0 {
		return "", result{}, false
	}
	return name, res, true
}
