package main

import (
	"encoding/json"
	"reflect"
	"testing"

	"vsimdvliw/internal/server"
)

func TestParseBenchLine(t *testing.T) {
	name, res, ok := parseBenchLine(
		"BenchmarkSimulator-8   3   6427189 ns/op   34420070 sim_ops/s")
	if !ok {
		t.Fatal("did not parse a valid benchmark line")
	}
	if name != "Simulator" {
		t.Fatalf("name = %q, want Simulator (GOMAXPROCS suffix stripped)", name)
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", res.Iterations)
	}
	want := map[string]float64{"ns/op": 6427189, "sim_ops/s": 34420070}
	if !reflect.DeepEqual(res.Metrics, want) {
		t.Fatalf("metrics = %v, want %v", res.Metrics, want)
	}

	for _, bad := range []string{
		"",
		"ok  	vsimdvliw	3.2s",
		"PASS",
		"goos: linux",
		"BenchmarkBroken notanumber 5 ns/op",
	} {
		if _, _, ok := parseBenchLine(bad); ok {
			t.Errorf("parseBenchLine(%q) unexpectedly parsed", bad)
		}
	}
}

// TestOutputSchema golden-checks the BENCH JSON document shape: the
// top-level field names (including the service_req_s headline) are the
// contract regression tooling diffs across commits, so a rename must be
// a deliberate, test-visible change.
func TestOutputSchema(t *testing.T) {
	doc := output{
		Date:              "2026-08-06",
		GoVersion:         "go1.24",
		GOOS:              "linux",
		GOARCH:            "amd64",
		CPU:               "test",
		Benchtime:         "3x",
		SimOpsPerS:        1,
		SchedOpsPerS:      4,
		ServiceReqPerS:    2,
		ServiceHotReqPerS: 3,
		Service:           &server.LoadReport{},
		ServiceHot:        &server.LoadReport{},
		Benchmarks: map[string]result{
			"Simulator": {Iterations: 3, Metrics: map[string]float64{"sim_ops/s": 1}},
		},
	}
	b, err := json.Marshal(&doc)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"date", "go_version", "goos", "goarch", "cpu", "benchtime",
		"sim_ops_per_s", "sched_ops_s", "service_req_s", "service_hot_req_s",
		"vlsweep_cells_s", "vlsweep_hot_cells_s",
		"service", "service_hot", "benchmarks",
	} {
		if _, ok := got[field]; !ok {
			t.Errorf("BENCH JSON is missing top-level field %q", field)
		}
	}
	for _, name := range []string{"service", "service_hot"} {
		var svc map[string]json.RawMessage
		if err := json.Unmarshal(got[name], &svc); err != nil {
			t.Fatal(err)
		}
		for _, field := range []string{
			"requests", "result_hits", "shed", "canceled", "errors",
			"duration_s", "req_s", "p50_ms", "p95_ms", "p99_ms", "max_ms",
		} {
			if _, ok := svc[field]; !ok {
				t.Errorf("%s report is missing field %q", name, field)
			}
		}
	}
}
