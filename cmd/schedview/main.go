// Command schedview prints VLIW schedules. Without flags it regenerates
// the paper's Figure 4 (the dist1 motion-estimation kernel scheduled on
// the 2-issue Vector2 machine); with -app/-config it prints the largest
// scheduled blocks of an application, which is useful for inspecting what
// the static scheduler does with real kernels.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"vsimdvliw/internal/apps"
	"vsimdvliw/internal/machine"
	"vsimdvliw/internal/report"
	"vsimdvliw/internal/sched"
)

func main() {
	appName := flag.String("app", "", "application to schedule (default: Figure 4 example)")
	cfgName := flag.String("config", "Vector2-2w", "machine configuration")
	blocks := flag.Int("blocks", 1, "number of largest blocks to print")
	flag.Parse()

	if *appName == "" {
		out, err := report.Figure4()
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
		return
	}

	a, err := apps.ByName(*appName)
	if err != nil {
		fail(err)
	}
	cfg := machine.ByName(*cfgName)
	if cfg == nil {
		fail(fmt.Errorf("unknown configuration %q", *cfgName))
	}
	built := a.Build(report.VariantFor(cfg))
	fs, err := sched.Schedule(built.Func, cfg)
	if err != nil {
		fail(err)
	}
	ordered := make([]*sched.BlockSched, len(fs.Blocks))
	copy(ordered, fs.Blocks)
	sort.Slice(ordered, func(i, j int) bool {
		return len(ordered[i].Block.Ops) > len(ordered[j].Block.Ops)
	})
	for i := 0; i < *blocks && i < len(ordered); i++ {
		bs := ordered[i]
		fmt.Printf("%s B%d (%d ops, %d cycles):\n", a.Name, bs.Block.ID, len(bs.Block.Ops), bs.Length)
		fmt.Println(bs.Dump(cfg))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedview:", err)
	os.Exit(1)
}
