module vsimdvliw

go 1.22
